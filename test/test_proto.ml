(* Tests for the memory consistency protocol: ownership transitions, data
   shipping, coalescing, NACK/retry, invariants and consistency properties. *)

open Dex_sim
open Dex_mem
open Dex_proto

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_i64 = Alcotest.(check int64)

(* One protocol instance over a fresh n-node fabric, message routing
   installed on every node. [net] overrides the fabric configuration (used
   by the chaos suite); its node count must match [nodes]. *)
let setup_with_fabric ?(nodes = 4) ?seed ?cfg ?net () =
  let engine = Engine.create () in
  let net_cfg =
    match net with
    | Some n -> n
    | None -> Dex_net.Net_config.default ~nodes ()
  in
  let fabric = Dex_net.Fabric.create engine net_cfg in
  let coh = Coherence.create ?cfg ?seed fabric ~origin:0 in
  for node = 0 to nodes - 1 do
    Dex_net.Fabric.set_handler fabric ~node (fun _ env ->
        if not (Coherence.handler coh env) then
          failwith "test_proto: unrouted message")
  done;
  (engine, coh, fabric)

let setup ?nodes ?seed ?cfg ?net () =
  let engine, coh, _ = setup_with_fabric ?nodes ?seed ?cfg ?net () in
  (engine, coh)

(* Accumulated across every property case that ran over a chaos fabric, so
   a final directed test can prove the fault paths were actually
   exercised (not vacuously green because nothing was ever dropped). *)
let chaos_retransmits = ref 0
let chaos_partition_drops = ref 0
let chaos_faults_injected = ref 0

let harvest_chaos fabric =
  let get = Stats.get (Dex_net.Fabric.stats fabric) in
  chaos_retransmits := !chaos_retransmits + get "chaos.retransmits";
  chaos_partition_drops := !chaos_partition_drops + get "chaos.partition_drops";
  chaos_faults_injected :=
    !chaos_faults_injected + get "chaos.drops" + get "chaos.dups"
    + get "chaos.reorders"

(* The fault mix the acceptance criteria call for: 5% drops, 2% dups,
   reordering and jitter on, and a transient partition cutting node 2 off
   from the origin that heals mid-run. RTOs are tightened so the short
   property programs retransmit through the outage instead of idling. *)
let chaos_net ~nodes =
  let open Dex_net.Net_config in
  let chaos =
    {
      chaos_default with
      chaos_seed = 99;
      drop_prob = 0.05;
      dup_prob = 0.02;
      reorder_prob = 0.05;
      delay_jitter_ns = Time_ns.ns 1_000;
      partitions =
        [ { p_a = 0; p_b = 2; p_from = Time_ns.us 50; p_until = Time_ns.us 250 } ];
      rto = Time_ns.us 50;
      rto_cap = Time_ns.us 400;
    }
  in
  { (default ~nodes ()) with chaos = Some chaos }

(* The coherence fast-path knobs under test: sequential prefetching on
   (off by default) and batched revocation fan-out. *)
let fast_cfg =
  {
    Proto_config.default with
    prefetch_enabled = true;
    batch_revoke = true;
  }

(* Page ownership spread over 4 home nodes: the SC properties must hold
   unchanged when requests route to per-shard directories. *)
let shard_cfg = { Proto_config.default with sharding = `Hash 4 }

let addr0 = Layout.heap_base

(* Run [f] as a fiber and drive the simulation to quiescence. *)
let run_fiber engine f =
  Engine.spawn engine f;
  Engine.run_until_quiescent engine

let test_remote_read_fetches_data () =
  let engine, coh = setup () in
  let seen = ref 0L in
  run_fiber engine (fun () ->
      Coherence.store_i64 coh ~node:0 ~tid:0 addr0 42L;
      seen := Coherence.load_i64 coh ~node:1 ~tid:1 addr0);
  check_i64 "remote read sees origin write" 42L !seen;
  (match Directory.state (Coherence.directory coh) (Page.page_of_addr addr0) with
  | Directory.Shared readers ->
      check_bool "requester is a reader" true (Node_set.mem readers 1)
  | Directory.Exclusive _ -> Alcotest.fail "expected shared state");
  Coherence.check_invariants coh

let test_uncontended_fault_latency () =
  let engine, coh = setup () in
  run_fiber engine (fun () ->
      Coherence.store_i64 coh ~node:0 ~tid:0 addr0 1L;
      ignore (Coherence.load_i64 coh ~node:1 ~tid:1 addr0));
  let h = Coherence.fault_latencies coh in
  check_int "exactly one protocol fault" 1 (Histogram.count h);
  let lat = Histogram.max_value h in
  (* Paper: ~19.3us fast path including the 13.6us page retrieval. *)
  check_bool
    (Printf.sprintf "fast-path latency ~19us (got %.1fus)"
       (Time_ns.to_us_f lat))
    true
    (lat > Time_ns.us 15 && lat < Time_ns.us 24)

let test_write_invalidates_readers () =
  let engine, coh = setup () in
  let final = ref 0L in
  run_fiber engine (fun () ->
      Coherence.store_i64 coh ~node:0 ~tid:0 addr0 1L;
      ignore (Coherence.load_i64 coh ~node:1 ~tid:1 addr0);
      ignore (Coherence.load_i64 coh ~node:2 ~tid:2 addr0);
      Coherence.store_i64 coh ~node:3 ~tid:3 addr0 99L;
      final := Coherence.load_i64 coh ~node:2 ~tid:2 addr0);
  check_i64 "reader sees the new value after invalidation" 99L !final;
  let st = Coherence.stats coh in
  check_bool "invalidations happened" true (Stats.get st "revoke.invalidate" >= 2);
  Coherence.check_invariants coh

let test_upgrade_grants_without_data () =
  let engine, coh = setup () in
  run_fiber engine (fun () ->
      Coherence.store_i64 coh ~node:0 ~tid:0 addr0 5L;
      ignore (Coherence.load_i64 coh ~node:1 ~tid:1 addr0);
      (* Read -> Write upgrade: node 1 already holds valid data. *)
      Coherence.store_i64 coh ~node:1 ~tid:1 addr0 6L);
  let st = Coherence.stats coh in
  check_bool "at least one grant without data" true
    (Stats.get st "grant.nodata" >= 1);
  (match Directory.state (Coherence.directory coh) (Page.page_of_addr addr0) with
  | Directory.Exclusive 1 -> ()
  | _ -> Alcotest.fail "node 1 should own the page exclusively");
  Coherence.check_invariants coh

let test_write_data_preserved_across_nodes () =
  (* Values written by different nodes to different offsets of the same
     page must all survive the ownership ping-pong. *)
  let engine, coh = setup () in
  let a = addr0 and b = addr0 + 8 and c = addr0 + 16 in
  let ra = ref 0L and rb = ref 0L and rc = ref 0L in
  run_fiber engine (fun () ->
      Coherence.store_i64 coh ~node:0 ~tid:0 a 10L;
      Coherence.store_i64 coh ~node:1 ~tid:1 b 11L;
      Coherence.store_i64 coh ~node:2 ~tid:2 c 12L;
      ra := Coherence.load_i64 coh ~node:3 ~tid:3 a;
      rb := Coherence.load_i64 coh ~node:3 ~tid:3 b;
      rc := Coherence.load_i64 coh ~node:3 ~tid:3 c);
  check_i64 "offset 0" 10L !ra;
  check_i64 "offset 8" 11L !rb;
  check_i64 "offset 16" 12L !rc;
  Coherence.check_invariants coh

let test_leader_follower_coalescing () =
  let engine, coh = setup () in
  run_fiber engine (fun () ->
      Coherence.store_i64 coh ~node:0 ~tid:0 addr0 7L);
  (* Four threads on node 1 read the same cold page simultaneously. *)
  for tid = 0 to 3 do
    Engine.spawn engine (fun () ->
        ignore (Coherence.load_i64 coh ~node:1 ~tid addr0))
  done;
  Engine.run_until_quiescent engine;
  let st = Coherence.stats coh in
  check_int "one leader fault" 1 (Stats.get st "fault.read");
  check_int "three coalesced followers" 3 (Stats.get st "fault.coalesced")

let test_origin_minor_faults_bypass_protocol () =
  let engine, coh = setup () in
  run_fiber engine (fun () ->
      for i = 0 to 9 do
        Coherence.store_i64 coh ~node:0 ~tid:0 (addr0 + (i * Page.size)) 1L
      done);
  let st = Coherence.stats coh in
  check_int "ten minor faults" 10 (Stats.get st "fault.minor");
  check_int "no protocol writes" 0 (Stats.get st "fault.write");
  check_int "no protocol latencies recorded" 0
    (Histogram.count (Coherence.fault_latencies coh))

let test_access_range_faults_per_page () =
  let engine, coh = setup () in
  run_fiber engine (fun () ->
      Coherence.access_range coh ~node:1 ~tid:0 ~addr:addr0
        ~len:(10 * Page.size) ~access:Perm.Read ());
  check_int "one protocol fault per page" 10
    (Stats.get (Coherence.stats coh) "fault.read");
  (* Second pass over the same range: all hits, no new faults. *)
  run_fiber engine (fun () ->
      Coherence.access_range coh ~node:1 ~tid:0 ~addr:addr0
        ~len:(10 * Page.size) ~access:Perm.Read ());
  check_int "no refaults on hits" 10
    (Stats.get (Coherence.stats coh) "fault.read")

let test_nack_and_retry () =
  let engine, coh = setup () in
  let vpn = Page.page_of_addr addr0 in
  run_fiber engine (fun () ->
      Coherence.store_i64 coh ~node:0 ~tid:0 addr0 1L);
  (* Hold the directory lock for 100us; the remote fault must retry. *)
  check_bool "lock taken" true (Directory.try_lock (Coherence.directory coh) vpn);
  Engine.schedule engine ~delay:(Time_ns.us 100) (fun () ->
      Directory.unlock (Coherence.directory coh) vpn);
  let lat = ref 0 in
  Engine.spawn engine (fun () ->
      let t0 = Engine.now engine in
      ignore (Coherence.load_i64 coh ~node:1 ~tid:1 addr0);
      lat := Engine.now engine - t0);
  Engine.run_until_quiescent engine;
  check_bool "retries counted" true
    (Stats.get (Coherence.stats coh) "fault.retry" >= 1);
  check_bool "contended fault is slow (>100us)" true (!lat > Time_ns.us 100);
  Coherence.check_invariants coh

let test_concurrent_writers_converge () =
  let engine, coh = setup ~nodes:3 () in
  let writes_per_node = 30 in
  (* Two remote nodes fight over one page; the origin only mediates. *)
  for node = 1 to 2 do
    Engine.spawn engine (fun () ->
        for i = 1 to writes_per_node do
          Coherence.store_i64 coh ~node ~tid:node addr0
            (Int64.of_int ((node * 1000) + i));
          (* a little compute between writes so the two nodes interleave *)
          Engine.delay engine (Time_ns.us 2)
        done)
  done;
  Engine.run_until_quiescent engine;
  Coherence.check_invariants coh;
  let final = ref 0L in
  run_fiber engine (fun () ->
      final := Coherence.load_i64 coh ~node:0 ~tid:0 addr0);
  check_bool "final value is one of the last writes" true
    (!final = Int64.of_int (1000 + writes_per_node)
    || !final = Int64.of_int (2000 + writes_per_node));
  (* Each exclusive transfer amortizes a burst of local writes (and NACK
     backoff amortizes even more), so the fault count is well below the
     write count but clearly nonzero. *)
  check_bool "page ping-pong caused protocol faults" true
    (Stats.get (Coherence.stats coh) "fault.write" >= 3)

let test_single_writer_monotonic_readers () =
  (* Sequential consistency smoke test: a single writer publishes an
     increasing counter; every reader must observe a non-decreasing
     sequence ending at the final value. *)
  let engine, coh = setup ~nodes:4 () in
  let n_writes = 20 in
  Engine.spawn engine (fun () ->
      for i = 1 to n_writes do
        Coherence.store_i64 coh ~node:0 ~tid:0 addr0 (Int64.of_int i);
        Engine.delay engine (Time_ns.us 30)
      done);
  let violations = ref 0 in
  for node = 1 to 3 do
    Engine.spawn engine (fun () ->
        let prev = ref 0L in
        for _ = 1 to 40 do
          let v = Coherence.load_i64 coh ~node ~tid:node addr0 in
          if v < !prev then incr violations;
          prev := v;
          Engine.delay engine (Time_ns.us 11)
        done)
  done;
  Engine.run_until_quiescent engine;
  check_int "no monotonicity violations" 0 !violations;
  Coherence.check_invariants coh

let prop_sequential_writes_then_read ?cfg ?net ~name () =
  (* Random single-threaded programs issuing writes from random nodes; a
     final sweep from one node must read exactly the model values. *)
  QCheck.Test.make ~name ~count:40
    QCheck.(
      list_of_size Gen.(1 -- 40)
        (triple (int_bound 3) (int_bound 15) (int_range 1 1000)))
    (fun ops ->
      let engine, coh, fabric = setup_with_fabric ~nodes:4 ?cfg ?net () in
      let model = Hashtbl.create 16 in
      let ok = ref true in
      run_fiber engine (fun () ->
          List.iter
            (fun (node, slot, v) ->
              let addr = addr0 + (slot * 520 * 8) in
              (* slots spread over pages, some sharing *)
              Coherence.store_i64 coh ~node ~tid:node addr (Int64.of_int v);
              Hashtbl.replace model addr (Int64.of_int v))
            ops;
          Hashtbl.iter
            (fun addr v ->
              let got = Coherence.load_i64 coh ~node:3 ~tid:3 addr in
              if got <> v then ok := false)
            model);
      Coherence.check_invariants coh;
      harvest_chaos fabric;
      !ok)

let prop_single_writer_per_address_monotonic ?cfg ?net ~name () =
  (* Per-address single-writer, multi-reader: with one designated writer
     per address publishing increasing values, every reader must observe a
     non-decreasing sequence at each address — a consequence of sequential
     consistency that would break under stale reads. *)
  QCheck.Test.make ~name ~count:20
    QCheck.(pair small_int (int_range 1 4))
    (fun (seed, n_addrs) ->
      let engine, coh, fabric = setup_with_fabric ~nodes:4 ~seed ?cfg ?net () in
      let addr_of k = addr0 + (k * 192) in
      (* writers: one per address, on rotating nodes *)
      for k = 0 to n_addrs - 1 do
        Engine.spawn engine (fun () ->
            for i = 1 to 12 do
              Coherence.store_i64 coh ~node:(k mod 4) ~tid:k (addr_of k)
                (Int64.of_int i);
              Engine.delay engine (Time_ns.us 17)
            done)
      done;
      let ok = ref true in
      (* readers: every node polls every address *)
      for node = 0 to 3 do
        Engine.spawn engine (fun () ->
            let prev = Array.make n_addrs 0L in
            for _ = 1 to 25 do
              for k = 0 to n_addrs - 1 do
                let v =
                  Coherence.load_i64 coh ~node ~tid:(100 + node) (addr_of k)
                in
                if v < prev.(k) then ok := false;
                prev.(k) <- v
              done;
              Engine.delay engine (Time_ns.us 9)
            done)
      done;
      Engine.run_until_quiescent engine;
      Coherence.check_invariants coh;
      harvest_chaos fabric;
      !ok)

let prop_invariants_under_concurrency ?cfg ?net ~name () =
  QCheck.Test.make ~name ~count:25
    QCheck.(
      pair small_int
        (list_of_size Gen.(1 -- 20)
           (triple (int_bound 3) (int_bound 3) bool)))
    (fun (seed, threads) ->
      let engine, coh, fabric = setup_with_fabric ~nodes:4 ~seed ?cfg ?net () in
      List.iteri
        (fun tid (node, slot, is_write) ->
          Engine.spawn engine (fun () ->
              let addr = addr0 + (slot * Page.size) in
              for i = 1 to 5 do
                if is_write then
                  Coherence.store_i64 coh ~node ~tid addr (Int64.of_int i)
                else ignore (Coherence.load_i64 coh ~node ~tid addr);
                Engine.delay engine (Time_ns.us 3)
              done))
        threads;
      Engine.run_until_quiescent engine;
      Coherence.check_invariants coh;
      harvest_chaos fabric;
      true)

let test_no_lost_updates_origin_race () =
  (* Regression: a remote write request arriving while the origin has a
     granted-but-not-retired fault on the same page must wait for the
     origin's pending read-modify-write, or the update is lost. *)
  let engine, coh = setup ~nodes:4 () in
  let per_thread = 25 in
  let host_calls = ref 0 in
  for node = 0 to 3 do
    for t = 0 to 1 do
      Engine.spawn engine (fun () ->
          for _ = 1 to per_thread do
            incr host_calls;
            ignore
              (Coherence.fetch_add_i64 coh ~node ~tid:((node * 2) + t) addr0
                 1L);
            Engine.delay engine (Time_ns.ns (300 * (((node * 2) + t mod 5) + 1)))
          done)
    done
  done;
  Engine.run_until_quiescent engine;
  let final = ref 0L in
  run_fiber engine (fun () -> final := Coherence.load_i64 coh ~node:0 ~tid:0 addr0);
  Alcotest.(check int64)
    "every increment retained"
    (Int64.of_int !host_calls)
    !final;
  Coherence.check_invariants coh

let test_width_accessors () =
  let engine, coh = setup () in
  run_fiber engine (fun () ->
      (* Mixed widths within one 8-byte cell survive ownership moves. *)
      Coherence.store_i32 coh ~node:0 ~tid:0 addr0 0x11223344l;
      Coherence.store_i32 coh ~node:1 ~tid:1 (addr0 + 4) 0x55667788l;
      Coherence.store_byte coh ~node:2 ~tid:2 (addr0 + 9) 0xAB;
      Alcotest.(check int32) "low word" 0x11223344l
        (Coherence.load_i32 coh ~node:3 ~tid:3 addr0);
      Alcotest.(check int32) "high word" 0x55667788l
        (Coherence.load_i32 coh ~node:3 ~tid:3 (addr0 + 4));
      check_int "byte" 0xAB (Coherence.load_byte coh ~node:3 ~tid:3 (addr0 + 9));
      (match Coherence.load_i32 coh ~node:0 ~tid:0 (addr0 + 2) with
      | _ -> Alcotest.fail "expected misalignment rejection"
      | exception Invalid_argument _ -> ()));
  Coherence.check_invariants coh

let test_zap_range () =
  let engine, coh = setup () in
  run_fiber engine (fun () ->
      Coherence.access_range coh ~node:1 ~tid:0 ~addr:addr0
        ~len:(4 * Page.size) ~access:Perm.Read ());
  let first = Page.page_of_addr addr0 in
  let n = Coherence.zap_range coh ~first ~last:(first + 1) ~node:1 in
  check_int "two zapped" 2 n;
  check_bool "rest intact" true
    (Page_table.allows (Coherence.page_table coh ~node:1) (first + 2) Perm.Read)

let test_tracer_records_faults () =
  let engine, coh = setup () in
  let events = ref [] in
  Coherence.set_tracer coh (Some (fun e -> events := e :: !events));
  run_fiber engine (fun () ->
      Coherence.store_i64 coh ~node:0 ~tid:0 addr0 1L;
      ignore (Coherence.load_i64 coh ~node:1 ~tid:7 ~site:"reader_loop" addr0);
      Coherence.store_i64 coh ~node:2 ~tid:8 addr0 2L);
  let reads =
    List.filter (fun e -> e.Fault_event.kind = Fault_event.Read) !events
  in
  (match reads with
  | [ e ] ->
      check_int "node" 1 e.Fault_event.node;
      check_int "tid" 7 e.Fault_event.tid;
      Alcotest.(check string) "site" "reader_loop" e.Fault_event.site;
      check_int "addr is page base" (Page.align_down addr0) e.Fault_event.addr;
      check_bool "latency recorded" true (e.Fault_event.latency > 0)
  | _ -> Alcotest.fail "expected exactly one read fault event");
  check_bool "invalidation events recorded" true
    (List.exists
       (fun e -> e.Fault_event.kind = Fault_event.Invalidation)
       !events)

let test_contended_pingpong_is_bimodal () =
  (* Two nodes hammer the same page with writes: the latency distribution
     must show a fast uncontended mode and a slow retry mode (paper §V-D:
     19.3us vs 158.8us). *)
  let engine, coh = setup ~nodes:3 () in
  for node = 1 to 2 do
    Engine.spawn engine (fun () ->
        for i = 1 to 100 do
          Coherence.store_i64 coh ~node ~tid:node addr0 (Int64.of_int i);
          Engine.delay engine (Time_ns.us 1)
        done)
  done;
  Engine.run_until_quiescent engine;
  let h = Coherence.fault_latencies coh in
  let fast =
    List.length
      (List.filter (fun v -> v < Time_ns.us 40) (Histogram.to_list h))
  in
  let slow =
    List.length
      (List.filter (fun v -> v > Time_ns.us 60) (Histogram.to_list h))
  in
  check_bool "has a fast mode" true (fast > 0);
  check_bool "has a slow (retry) mode" true (slow > 0);
  check_bool "retries occurred" true
    (Stats.get (Coherence.stats coh) "fault.retry" > 0)

(* ------------------------------------------------------------------ *)
(* Coherence fast paths: sequential prefetch + batched revocation.      *)

let test_prefetch_batches_sequential_scan () =
  let engine, coh, fabric = setup_with_fabric ~cfg:fast_cfg () in
  run_fiber engine (fun () ->
      Coherence.access_range coh ~node:1 ~tid:0 ~addr:addr0
        ~len:(32 * Page.size) ~access:Perm.Read ());
  let st = Coherence.stats coh in
  let faults = Stats.get st "fault.read" in
  check_bool
    (Printf.sprintf "at most half the faults of a page-at-a-time scan (%d)"
       faults)
    true
    (faults * 2 <= 32);
  check_bool "prefetches granted" true (Stats.get st "prefetch.granted" > 0);
  check_int "every prefetched page was then accessed"
    (Stats.get st "prefetch.granted")
    (Stats.get st "prefetch.hit");
  check_int "primed window never overshoots" 0 (Stats.get st "prefetch.waste");
  (* Multi-page grants are bigger than rdma_threshold: they must ride the
     RDMA path of the fabric, not the verb path. *)
  let fst_ = Dex_net.Fabric.stats fabric in
  check_bool "batch requests sent" true
    (Stats.get fst_ "sent.page_req_batch" > 0);
  check_bool "multi-page grants rode RDMA" true
    (Stats.get fst_ "path.rdma" > 0 && Stats.get fst_ "bytes.rdma" > 0);
  Coherence.check_invariants coh

let test_prefetch_values_survive_batching () =
  (* Real bytes written at the origin must arrive through batched grants
     exactly as through single-page grants. *)
  let engine, coh = setup ~cfg:fast_cfg () in
  let ok = ref true in
  run_fiber engine (fun () ->
      for i = 0 to 15 do
        Coherence.store_i64 coh ~node:0 ~tid:0 (addr0 + (i * Page.size))
          (Int64.of_int (100 + i))
      done;
      for i = 0 to 15 do
        let v =
          Coherence.load_i64 coh ~node:1 ~tid:1 (addr0 + (i * Page.size))
        in
        if v <> Int64.of_int (100 + i) then ok := false
      done);
  check_bool "all values correct through batched grants" true !ok;
  check_bool "prefetching actually kicked in" true
    (Stats.get (Coherence.stats coh) "prefetch.granted" > 0);
  Coherence.check_invariants coh

let test_prefetched_page_still_revocable () =
  (* A page granted by prefetch but never touched must still be revocable:
     MRSW safety cannot depend on the prefetcher's guess ever being
     used. *)
  let engine, coh = setup ~cfg:fast_cfg () in
  let page i = addr0 + (i * Page.size) in
  run_fiber engine (fun () ->
      (* Unprimed ascending faults: the second fault establishes a stream
         and prefetches ahead of it. *)
      for i = 0 to 2 do
        ignore (Coherence.load_i64 coh ~node:1 ~tid:0 (page i))
      done);
  let st = Coherence.stats coh in
  check_bool "pages were prefetched ahead" true
    (Stats.get st "prefetch.granted" > 0);
  let vpn4 = Page.page_of_addr (page 4) in
  check_bool "node 1 holds page 4 without ever touching it" true
    (Page_table.allows (Coherence.page_table coh ~node:1) vpn4 Perm.Read);
  (* Another node writes that page: the origin must revoke node 1's
     never-used copy like any other read replica. *)
  run_fiber engine (fun () ->
      Coherence.store_i64 coh ~node:2 ~tid:1 (page 4) 7L);
  check_bool "prefetched copy revoked" true
    (Page_table.get (Coherence.page_table coh ~node:1) vpn4 = None);
  check_bool "revocation counted as prefetch waste" true
    (Stats.get st "prefetch.waste" >= 1);
  (match Directory.state (Coherence.directory coh) vpn4 with
  | Directory.Exclusive 2 -> ()
  | _ -> Alcotest.fail "node 2 should own page 4 exclusively");
  Coherence.check_invariants coh

let test_batched_write_scan_revokes_readers () =
  (* Two nodes read a window, then a third sweeps it with writes: batched
     write grants must invalidate the readers through one Invalidate_batch
     per victim node, and leave the sweeper exclusive owner of every
     page. *)
  let engine, coh = setup ~cfg:fast_cfg () in
  let len = 12 * Page.size in
  run_fiber engine (fun () ->
      Coherence.access_range coh ~node:1 ~tid:0 ~addr:addr0 ~len
        ~access:Perm.Read ();
      Coherence.access_range coh ~node:2 ~tid:0 ~addr:addr0 ~len
        ~access:Perm.Read ();
      Coherence.access_range coh ~node:3 ~tid:0 ~addr:addr0 ~len
        ~access:Perm.Write ());
  let st = Coherence.stats coh in
  check_bool "batched revocations used" true (Stats.get st "revoke.batch" >= 1);
  check_bool "each batch covered several pages" true
    (Stats.get st "revoke.batch_pages" > Stats.get st "revoke.batch");
  let first = Page.page_of_addr addr0 in
  for vpn = first to first + 11 do
    (match Directory.state (Coherence.directory coh) vpn with
    | Directory.Exclusive 3 -> ()
    | _ -> Alcotest.fail "node 3 should own the whole window");
    check_bool "reader PTEs zapped" true
      (Page_table.get (Coherence.page_table coh ~node:1) vpn = None
      && Page_table.get (Coherence.page_table coh ~node:2) vpn = None)
  done;
  Coherence.check_invariants coh

let test_revoke_parallel_zero_cost_handlers () =
  (* Regression for a lost-wakeup hazard in the revocation join: with
     invalidate_handler = 0 victim-side handling costs nothing, so revoke
     jobs complete as early as the engine allows — including, for a
     single victim, before the join point is even reached. The join must
     re-check its pending count instead of unconditionally sleeping. *)
  let cfg = { Proto_config.default with invalidate_handler = 0 } in
  let engine, coh = setup ~cfg () in
  let finished = ref false in
  run_fiber engine (fun () ->
      Coherence.store_i64 coh ~node:0 ~tid:0 addr0 1L;
      ignore (Coherence.load_i64 coh ~node:1 ~tid:1 addr0);
      ignore (Coherence.load_i64 coh ~node:2 ~tid:2 addr0);
      ignore (Coherence.load_i64 coh ~node:3 ~tid:3 addr0);
      (* three victims: spawned fan-out *)
      Coherence.store_i64 coh ~node:0 ~tid:0 addr0 2L;
      ignore (Coherence.load_i64 coh ~node:1 ~tid:1 addr0);
      (* one victim: the fan-out job runs inline in the granting fiber *)
      Coherence.store_i64 coh ~node:2 ~tid:2 addr0 3L;
      finished := true);
  check_bool "fan-out joined and the program completed" true !finished;
  check_bool "invalidations happened" true
    (Stats.get (Coherence.stats coh) "revoke.invalidate" >= 3);
  Coherence.check_invariants coh

let prop_backoff_clamped =
  (* The retry delay must stay within +/- 25% of the undithered exponential
     delay for ANY backoff_base, including degenerate ones (0 or tiny):
     the jitter may never drag it to the 1 ns floor. *)
  QCheck.Test.make ~name:"backoff delay clamped to [3d/4, 5d/4]" ~count:300
    QCheck.(pair (int_range 0 20) (int_range 0 1_000_000))
    (fun (attempt, base) ->
      let cfg = { Proto_config.default with backoff_base = base } in
      let _engine, coh = setup ~cfg () in
      let dflt = Proto_config.default in
      let base' = max 1 base in
      let cap = max base' dflt.Proto_config.backoff_cap in
      let d = min cap (base' * (1 lsl max 0 (min attempt 6))) in
      let delay = Coherence.backoff_delay coh ~node:1 ~attempt in
      delay >= 1 && delay >= d - (d / 4) && delay <= d + (d / 4))

(* --- fail-stop crashes ------------------------------------------------- *)

(* A chaos fabric with fast retransmission so Unreachable escalation fires
   quickly in directed tests. *)
let crash_net ?(crashes = []) ~nodes () =
  let open Dex_net.Net_config in
  let chaos =
    {
      chaos_default with
      chaos_seed = 7;
      rto = Time_ns.us 20;
      rto_cap = Time_ns.us 100;
      max_retransmits = 4;
      crashes;
    }
  in
  { (default ~nodes ()) with chaos = Some chaos }

(* Satellite regression: a revocation that exhausts its retry budget
   against a dead node unwinds with [Unreachable] through the origin's
   grant path — the directory entry must come out unlocked and the write
   must still be granted (the dead copy counts as invalidated). *)
let test_unreachable_leaves_no_lock () =
  let engine, coh, fabric =
    setup_with_fabric ~nodes:3 ~net:(crash_net ~nodes:3 ()) ()
  in
  run_fiber engine (fun () ->
      Coherence.store_i64 coh ~node:0 ~tid:0 addr0 7L;
      ignore (Coherence.load_i64 coh ~node:1 ~tid:1 addr0);
      Dex_net.Fabric.crash fabric ~node:1;
      (* Node 2's write must revoke node 1's read copy; the dead node
         never acks, the origin escalates and completes the grant. *)
      Coherence.store_i64 coh ~node:2 ~tid:2 addr0 9L);
  Engine.run_until_quiescent engine;
  let vpn = Page.page_of_addr addr0 in
  check_bool "page not left locked" false
    (Directory.locked (Coherence.directory coh) vpn);
  check_bool "retry-budget exhaustion escalated to a crash declaration" true
    (Stats.get (Coherence.stats coh) "crash.escalations" > 0);
  (match Directory.state (Coherence.directory coh) vpn with
  | Directory.Exclusive 2 -> ()
  | _ -> Alcotest.fail "the surviving writer owns the page");
  Coherence.check_invariants coh

(* Reclaim semantics: exclusive pages of the dead node re-home to the
   origin's last-known copy (the unobserved write never happened), reader
   sets are scrubbed, the dead node's tables are reset. *)
let test_reclaim_rehomes_ownership () =
  let engine, coh, fabric =
    setup_with_fabric ~nodes:3 ~net:(crash_net ~nodes:3 ()) ()
  in
  let addr_b = addr0 + Page.size in
  run_fiber engine (fun () ->
      Coherence.store_i64 coh ~node:0 ~tid:0 addr0 7L;
      Coherence.store_i64 coh ~node:1 ~tid:1 addr0 42L;
      (* page B: node 1 and node 2 are both readers *)
      ignore (Coherence.load_i64 coh ~node:1 ~tid:1 addr_b);
      ignore (Coherence.load_i64 coh ~node:2 ~tid:2 addr_b));
  Engine.run_until_quiescent engine;
  run_fiber engine (fun () ->
      Dex_net.Fabric.crash fabric ~node:1;
      Dex_net.Fabric.declare_dead fabric ~node:1);
  let dir = Coherence.directory coh in
  (match Directory.state dir (Page.page_of_addr addr0) with
  | Directory.Exclusive 0 -> ()
  | _ -> Alcotest.fail "dead node's exclusive page re-homed to the origin");
  (match Directory.state dir (Page.page_of_addr addr_b) with
  | Directory.Shared s ->
      check_bool "dead node scrubbed from the reader set" false
        (Node_set.mem s 1)
  | Directory.Exclusive _ -> Alcotest.fail "page B should stay shared");
  check_int "dead node's page table reset" 0
    (Page_table.count (Coherence.page_table coh ~node:1));
  check_bool "pages reclaimed counted" true
    (Stats.get (Coherence.stats coh) "crash.pages_reclaimed" > 0);
  check_bool "reader scrub counted" true
    (Stats.get (Coherence.stats coh) "crash.readers_scrubbed" > 0);
  Coherence.check_invariants coh;
  (* The unobserved write is as if it never executed. *)
  let v = ref 0L in
  run_fiber engine (fun () -> v := Coherence.load_i64 coh ~node:0 ~tid:0 addr0);
  check_i64 "origin's last-known copy survives" 7L !v;
  (* The origin itself can never be reclaimed. *)
  check_bool "reclaiming the origin is refused" true
    (match Coherence.reclaim_node coh ~node:0 with
    | () -> false
    | exception Failure _ -> true)

(* Satellite: the SC property suite re-run with a scheduled mid-run crash
   of a non-origin node. Fibers caught on the dead node absorb their own
   unwind (there is no Process-layer guard at this level); everyone else
   must finish, the invariants must hold, and no directory entry may still
   name the dead node. *)
let prop_invariants_with_crash ~name () =
  QCheck.Test.make ~name ~count:25
    QCheck.(
      pair small_int
        (list_of_size Gen.(1 -- 20)
           (triple (int_bound 3) (int_bound 3) bool)))
    (fun (seed, threads) ->
      let net =
        crash_net ~nodes:4
          ~crashes:
            [ { Dex_net.Net_config.crash_node = 3; crash_at = Time_ns.us 120 } ]
          ()
      in
      let engine, coh, fabric = setup_with_fabric ~nodes:4 ~seed ~net () in
      List.iteri
        (fun tid (node, slot, is_write) ->
          Engine.spawn engine (fun () ->
              let addr = addr0 + (slot * Page.size) in
              try
                for i = 1 to 5 do
                  if is_write then
                    Coherence.store_i64 coh ~node ~tid addr (Int64.of_int i)
                  else ignore (Coherence.load_i64 coh ~node ~tid addr);
                  Engine.delay engine (Time_ns.us 3)
                done
              with
              | Dex_net.Fabric.Unreachable _
              when Dex_net.Fabric.crashed fabric ~node
              ->
                ()))
        threads;
      Engine.run_until_quiescent engine;
      Coherence.check_invariants coh;
      check_bool "crash declared" true
        (Dex_net.Fabric.crash_detected fabric ~node:3);
      let ghost = ref false in
      Directory.iter (Coherence.directory coh) (fun _ st ->
          match st with
          | Directory.Exclusive 3 -> ghost := true
          | Directory.Shared s when Node_set.mem s 3 -> ghost := true
          | _ -> ());
      not !ghost)

(* Runs after the chaos property cases (alcotest executes suites in order):
   the sequential-consistency results above are only meaningful evidence if
   faults were actually injected and recovered from. *)
let test_chaos_fault_paths_exercised () =
  check_bool "faults were injected across the chaos property runs" true
    (!chaos_faults_injected > 0);
  check_bool "lost messages were retransmitted (chaos.retransmits > 0)" true
    (!chaos_retransmits > 0);
  check_bool "the transient partition discarded traffic" true
    (!chaos_partition_drops > 0)

(* --- placement autopilot primitives ------------------------------------ *)

(* Re-homing moves a page's serving authority without touching data: SC
   holds across the move for accessors on every node, the overlay lists
   exactly the moved pages, and moving back to the static home clears it. *)
let test_rehome_moves_authority () =
  let engine, coh = setup ~nodes:4 () in
  let vpn = Page.page_of_addr addr0 in
  run_fiber engine (fun () ->
      Coherence.store_i64 coh ~node:0 ~tid:0 addr0 7L;
      check_int "static home serves the page" 0 (Coherence.page_home coh vpn);
      (match Coherence.rehome_page coh ~vpn ~node:2 with
      | `Rehomed -> ()
      | _ -> Alcotest.fail "re-home to node 2 must succeed");
      check_int "dynamic home serves the page" 2 (Coherence.page_home coh vpn);
      Alcotest.(check (list (pair int int)))
        "overlay lists the moved page" [ (vpn, 2) ]
        (Coherence.rehomed_pages coh);
      (* SC across the move: a write from one node, reads from all. *)
      Coherence.store_i64 coh ~node:1 ~tid:1 addr0 8L;
      for node = 0 to 3 do
        check_i64 "every node reads through the dynamic home" 8L
          (Coherence.load_i64 coh ~node ~tid:node addr0)
      done;
      (match Coherence.rehome_page coh ~vpn ~node:2 with
      | `Noop -> ()
      | _ -> Alcotest.fail "re-home to the current home is a no-op");
      (match Coherence.rehome_page coh ~vpn ~node:0 with
      | `Rehomed -> ()
      | _ -> Alcotest.fail "re-home back to the static home must succeed");
      Alcotest.(check (list (pair int int)))
        "overlay cleared on the way back" [] (Coherence.rehomed_pages coh));
  check_int "both moves counted" 2
    (Stats.get (Coherence.stats coh) "autopilot.rehomes");
  check_bool "out-of-range target rejected" true
    (match Coherence.rehome_page coh ~vpn ~node:7 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Coherence.check_invariants coh

let test_rehome_refuses_dead_target () =
  let engine, coh, fabric =
    setup_with_fabric ~nodes:3 ~net:(crash_net ~nodes:3 ()) ()
  in
  run_fiber engine (fun () ->
      Coherence.store_i64 coh ~node:0 ~tid:0 addr0 7L;
      Dex_net.Fabric.crash fabric ~node:2;
      Dex_net.Fabric.declare_dead fabric ~node:2;
      match Coherence.rehome_page coh ~vpn:(Page.page_of_addr addr0) ~node:2 with
      | `Dead_target -> ()
      | _ -> Alcotest.fail "re-home onto a declared-dead node must refuse");
  Coherence.check_invariants coh

(* Pinning pulls a re-homed page back to its static shard home and holds
   it there: later re-home attempts become no-ops (the futex layer relies
   on this to keep its check-and-sleep home-local). *)
let test_pin_page_reverts_and_holds () =
  let engine, coh = setup ~nodes:4 () in
  let vpn = Page.page_of_addr addr0 in
  run_fiber engine (fun () ->
      Coherence.store_i64 coh ~node:0 ~tid:0 addr0 7L;
      (match Coherence.rehome_page coh ~vpn ~node:3 with
      | `Rehomed -> ()
      | _ -> Alcotest.fail "setup re-home must succeed");
      Coherence.pin_page coh ~vpn;
      check_int "pin pulled authority back to the static home" 0
        (Coherence.page_home coh vpn);
      check_bool "page reports pinned" true (Coherence.pinned_page coh vpn);
      check_int "the pull-back is counted" 1
        (Stats.get (Coherence.stats coh) "autopilot.pin_reverts");
      (match Coherence.rehome_page coh ~vpn ~node:2 with
      | `Noop -> ()
      | _ -> Alcotest.fail "re-homing a pinned page must refuse");
      check_int "refused re-home leaves authority put" 0
        (Coherence.page_home coh vpn);
      (* Idempotent: pinning an already-pinned, already-home page moves
         nothing. *)
      Coherence.pin_page coh ~vpn;
      check_int "re-pinning reverts nothing" 1
        (Stats.get (Coherence.stats coh) "autopilot.pin_reverts"));
  Coherence.check_invariants coh

(* The replicate-don't-invalidate path end to end: after a marked page's
   write cycle retires, the first read grant makes the home push copies to
   the displaced readers — their next reads hit locally, with no faults. *)
let test_mark_replicate_pushes_copies () =
  let engine, coh = setup ~nodes:4 () in
  let vpn = Page.page_of_addr addr0 in
  let st = Coherence.stats coh in
  run_fiber engine (fun () ->
      Coherence.store_i64 coh ~node:0 ~tid:0 addr0 1L;
      for node = 1 to 3 do
        ignore (Coherence.load_i64 coh ~node ~tid:node addr0)
      done;
      Coherence.mark_replicate coh ~first:vpn ~last:vpn;
      check_bool "mark recorded" true (Coherence.replicate_marked coh vpn);
      (* The write revokes readers 1..3 and records them as push
         subscribers; node 1's read grant returns the page to Shared and
         triggers unsolicited pushes to nodes 2 and 3. *)
      Coherence.store_i64 coh ~node:0 ~tid:0 addr0 2L;
      ignore (Coherence.load_i64 coh ~node:1 ~tid:1 addr0));
  run_fiber engine (fun () ->
      (* Quiescence above joined the pushes; 2 and 3 now read locally. *)
      let faults_before = Stats.get st "fault.read" in
      check_i64 "pushed copy holds the new value (node 2)" 2L
        (Coherence.load_i64 coh ~node:2 ~tid:2 addr0);
      check_i64 "pushed copy holds the new value (node 3)" 2L
        (Coherence.load_i64 coh ~node:3 ~tid:3 addr0);
      check_int "displaced readers re-read without faulting" faults_before
        (Stats.get st "fault.read"));
  check_bool "pushes counted" true
    (Stats.get st "autopilot.replica_pushes" >= 2);
  check_int "no victim declined" 0 (Stats.get st "autopilot.push_declined");
  Coherence.check_invariants coh

(* A re-homed page whose dynamic home crashes must fall back to its static
   shard home with the last-externalized bytes, and surviving copy holders
   keep working — re-homed entries are deliberately not HA-replicated, so
   this fallback IS their crash story. *)
let test_rehomed_home_crash_falls_back () =
  let engine, coh, fabric =
    setup_with_fabric ~nodes:3 ~net:(crash_net ~nodes:3 ()) ()
  in
  let vpn = Page.page_of_addr addr0 in
  run_fiber engine (fun () ->
      Coherence.store_i64 coh ~node:0 ~tid:0 addr0 7L;
      (match Coherence.rehome_page coh ~vpn ~node:1 with
      | `Rehomed -> ()
      | _ -> Alcotest.fail "setup re-home must succeed");
      (* A write served by the dynamic home, then a read that forces the
         writer to externalize its bytes — which the dynamic home mirrors
         back to the static shard home. *)
      Coherence.store_i64 coh ~node:2 ~tid:2 addr0 9L;
      ignore (Coherence.load_i64 coh ~node:0 ~tid:0 addr0);
      check_bool "externalized bytes mirrored to the static home" true
        (Stats.get (Coherence.stats coh) "autopilot.mirrors" > 0));
  run_fiber engine (fun () ->
      Dex_net.Fabric.crash fabric ~node:1;
      Dex_net.Fabric.declare_dead fabric ~node:1);
  check_int "authority fell back to the static shard home" 0
    (Coherence.page_home coh vpn);
  check_bool "fallback counted" true
    (Stats.get (Coherence.stats coh) "autopilot.fallbacks" > 0);
  Alcotest.(check (list (pair int int)))
    "overlay no longer lists the page" [] (Coherence.rehomed_pages coh);
  let v = ref 0L in
  run_fiber engine (fun () ->
      v := Coherence.load_i64 coh ~node:2 ~tid:2 addr0);
  check_i64 "the externalized write survives the crash" 9L !v;
  Coherence.check_invariants coh

(* The SC acceptance property for this PR: single-writer monotonicity must
   survive an adversary driving the autopilot's levers mid-run — re-homes
   to random nodes, replicate marks and pins on exactly the hot pages —
   on a chaotic fabric with sharded homes AND synchronous HA replication
   underneath. *)
let prop_monotonic_under_autopilot_actions ~name () =
  QCheck.Test.make ~name ~count:15
    QCheck.(pair small_int (int_range 1 4))
    (fun (seed, n_addrs) ->
      let cfg =
        {
          Proto_config.default with
          sharding = `Hash 4;
          replication = `Sync;
          standby_count = 1;
        }
      in
      let engine, coh, fabric =
        setup_with_fabric ~nodes:4 ~seed ~cfg ~net:(chaos_net ~nodes:4) ()
      in
      let addr_of k = addr0 + (k * 192) in
      for k = 0 to n_addrs - 1 do
        Engine.spawn engine (fun () ->
            for i = 1 to 12 do
              Coherence.store_i64 coh ~node:(k mod 4) ~tid:k (addr_of k)
                (Int64.of_int i);
              Engine.delay engine (Time_ns.us 17)
            done)
      done;
      let ok = ref true in
      for node = 0 to 3 do
        Engine.spawn engine (fun () ->
            let prev = Array.make n_addrs 0L in
            for _ = 1 to 25 do
              for k = 0 to n_addrs - 1 do
                let v =
                  Coherence.load_i64 coh ~node ~tid:(100 + node) (addr_of k)
                in
                if v < prev.(k) then ok := false;
                prev.(k) <- v
              done;
              Engine.delay engine (Time_ns.us 9)
            done)
      done;
      (* The adversary: autopilot actions against the pages under test. *)
      Engine.spawn engine (fun () ->
          let rng = Random.State.make [| seed; 0x9e37 |] in
          for _ = 1 to 20 do
            let vpn =
              Page.page_of_addr (addr_of (Random.State.int rng n_addrs))
            in
            (match Random.State.int rng 4 with
            | 0 | 1 ->
                ignore
                  (Coherence.rehome_page coh ~vpn
                     ~node:(Random.State.int rng 4))
            | 2 -> Coherence.mark_replicate coh ~first:vpn ~last:vpn
            | _ -> Coherence.pin_page coh ~vpn);
            Engine.delay engine (Time_ns.us 13)
          done);
      Engine.run_until_quiescent engine;
      Coherence.check_invariants coh;
      harvest_chaos fabric;
      !ok)

let qsuite = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "dex_proto"
    [
      ( "coherence",
        [
          Alcotest.test_case "remote read fetches data" `Quick
            test_remote_read_fetches_data;
          Alcotest.test_case "uncontended fault latency" `Quick
            test_uncontended_fault_latency;
          Alcotest.test_case "write invalidates readers" `Quick
            test_write_invalidates_readers;
          Alcotest.test_case "upgrade grants without data" `Quick
            test_upgrade_grants_without_data;
          Alcotest.test_case "offsets preserved across nodes" `Quick
            test_write_data_preserved_across_nodes;
          Alcotest.test_case "leader/follower coalescing" `Quick
            test_leader_follower_coalescing;
          Alcotest.test_case "origin minor faults" `Quick
            test_origin_minor_faults_bypass_protocol;
          Alcotest.test_case "access_range per-page faults" `Quick
            test_access_range_faults_per_page;
          Alcotest.test_case "NACK and retry" `Quick test_nack_and_retry;
          Alcotest.test_case "concurrent writers converge" `Quick
            test_concurrent_writers_converge;
          Alcotest.test_case "single-writer monotonic readers" `Quick
            test_single_writer_monotonic_readers;
          Alcotest.test_case "no lost updates (origin race)" `Quick
            test_no_lost_updates_origin_race;
          Alcotest.test_case "mixed-width accessors" `Quick
            test_width_accessors;
          Alcotest.test_case "zap range" `Quick test_zap_range;
          Alcotest.test_case "fault tracer" `Quick test_tracer_records_faults;
          Alcotest.test_case "contended ping-pong bimodal" `Quick
            test_contended_pingpong_is_bimodal;
          Alcotest.test_case "prefetch batches a sequential scan" `Quick
            test_prefetch_batches_sequential_scan;
          Alcotest.test_case "values survive batched grants" `Quick
            test_prefetch_values_survive_batching;
          Alcotest.test_case "prefetched page still revocable" `Quick
            test_prefetched_page_still_revocable;
          Alcotest.test_case "batched write scan revokes readers" `Quick
            test_batched_write_scan_revokes_readers;
          Alcotest.test_case "revoke fan-out with zero-cost handlers" `Quick
            test_revoke_parallel_zero_cost_handlers;
        ]
        @ qsuite
            [
              prop_sequential_writes_then_read
                ~name:"random write sequences match a reference memory" ();
              prop_sequential_writes_then_read ~cfg:fast_cfg
                ~name:"random write sequences (prefetch + batched revoke)" ();
              prop_single_writer_per_address_monotonic
                ~name:"per-address single-writer monotonicity" ();
              prop_single_writer_per_address_monotonic ~cfg:fast_cfg
                ~name:
                  "per-address single-writer monotonicity (prefetch + \
                   batched revoke)" ();
              prop_invariants_under_concurrency
                ~name:"directory/PTE invariants under random concurrency" ();
              prop_invariants_under_concurrency ~cfg:fast_cfg
                ~name:
                  "directory/PTE invariants under random concurrency \
                   (prefetch + batched revoke)" ();
              prop_sequential_writes_then_read ~cfg:shard_cfg
                ~name:"random write sequences (4 sharded homes)" ();
              prop_single_writer_per_address_monotonic ~cfg:shard_cfg
                ~name:"per-address single-writer monotonicity (4 sharded homes)"
                ();
              prop_invariants_under_concurrency ~cfg:shard_cfg
                ~name:
                  "directory/PTE invariants under random concurrency (4 \
                   sharded homes)" ();
              prop_backoff_clamped;
            ]
      );
      ( "chaos",
        qsuite
          [
            prop_sequential_writes_then_read ~net:(chaos_net ~nodes:4)
              ~name:"random write sequences under drop/dup/reorder + partition"
              ();
            prop_single_writer_per_address_monotonic ~net:(chaos_net ~nodes:4)
              ~name:"single-writer monotonicity under drop/dup/reorder" ();
            prop_invariants_under_concurrency ~net:(chaos_net ~nodes:4)
              ~name:"invariants under random concurrency + chaos" ();
            prop_invariants_under_concurrency ~cfg:fast_cfg
              ~net:(chaos_net ~nodes:4)
              ~name:"invariants under chaos (prefetch + batched revoke)" ();
            prop_invariants_under_concurrency ~cfg:shard_cfg
              ~net:(chaos_net ~nodes:4)
              ~name:"invariants under chaos (4 sharded homes)" ();
          ]
        @ [
            Alcotest.test_case "chaos fault paths exercised" `Quick
              test_chaos_fault_paths_exercised;
          ] );
      ( "crash",
        [
          Alcotest.test_case "mid-protocol Unreachable leaves no lock" `Quick
            test_unreachable_leaves_no_lock;
          Alcotest.test_case "reclaim re-homes ownership" `Quick
            test_reclaim_rehomes_ownership;
        ]
        @ qsuite
            [
              prop_invariants_with_crash
                ~name:"invariants + ghost-free directory under mid-run crash"
                ();
            ] );
      ( "autopilot",
        [
          Alcotest.test_case "re-home moves serving authority" `Quick
            test_rehome_moves_authority;
          Alcotest.test_case "re-home refuses dead targets" `Quick
            test_rehome_refuses_dead_target;
          Alcotest.test_case "pin pulls a page back and holds it" `Quick
            test_pin_page_reverts_and_holds;
          Alcotest.test_case "replicate mark pushes read copies" `Quick
            test_mark_replicate_pushes_copies;
          Alcotest.test_case "re-homed page survives its home crashing" `Quick
            test_rehomed_home_crash_falls_back;
        ]
        @ qsuite
            [
              prop_monotonic_under_autopilot_actions
                ~name:
                  "single-writer monotonicity with live re-home/pin/replicate \
                   under chaos (sharded + replicated)" ();
            ] );
    ]
