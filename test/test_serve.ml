(* Tests for the multi-tenant serving layer: admission-control accounting,
   graceful degradation under overload, per-tenant arrival independence,
   weighted fair sharing, and cross-tenant fault isolation under a
   mid-serve node crash. *)

open Dex_sim
open Dex_serve
module Net_config = Dex_net.Net_config
module Proto_config = Dex_proto.Proto_config

let () =
  Printexc.register_printer (function
    | Engine.Fiber_failure (label, e) ->
        Some (Printf.sprintf "Fiber_failure(%s, %s)" label (Printexc.to_string e))
    | _ -> None)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let ms = Time_ns.ms
let us = Time_ns.us

(* Deterministic chaos fabric with no injected faults: crashes need the
   reliable transport, and a short retry budget keeps detection quick. *)
let crash_net ~nodes () =
  let chaos =
    {
      Net_config.chaos_default with
      Net_config.chaos_seed = 11;
      rto = us 20;
      rto_cap = us 100;
      max_retransmits = 4;
    }
  in
  { (Net_config.default ~nodes ()) with chaos = Some chaos }

let tenant name ?(rate = 2.0) ?(inflight = 4) ?(pending = 0) () =
  {
    Serve_config.default_tenant with
    t_name = name;
    t_arrival = Poisson rate;
    t_max_inflight = inflight;
    t_max_pending = pending;
  }

let small_cfg ?(n = 2) ?(rate = 2.0) () =
  {
    Serve_config.default with
    tenants =
      List.init n (fun i -> tenant (Printf.sprintf "t%d" i) ~rate ());
    duration = ms 2;
    shed = false;
  }

(* The books balance on every tenant and every counter explains itself. *)
let test_accounting () =
  let r = Serve.run (small_cfg ()) in
  check_int "every tenant reported" 2 (List.length r.r_tenants);
  List.iter
    (fun (tr : Serve.tenant_result) ->
      check_bool (tr.tr_name ^ " saw traffic") true (tr.tr_offered > 0);
      check_int (tr.tr_name ^ " admission split")
        tr.tr_offered
        (tr.tr_admitted + tr.tr_rejected);
      check_int (tr.tr_name ^ " drain split") tr.tr_admitted
        (tr.tr_completed + tr.tr_shed);
      check_int (tr.tr_name ^ " all checksums match") 0 tr.tr_corrupted;
      check_int (tr.tr_name ^ " one latency sample per completion")
        tr.tr_completed
        (Histogram.count tr.tr_sojourn))
    r.r_tenants;
  let total f = List.fold_left (fun acc tr -> acc + f tr) 0 r.r_tenants in
  check_int "fleet offered" (total (fun tr -> tr.tr_offered))
    (Stats.get r.r_stats "serve.offered");
  check_int "fleet completed" (total (fun tr -> tr.tr_completed))
    (Stats.get r.r_stats "serve.completed");
  check_bool "drained past the arrival window" true
    (r.r_sim_time >= Time_ns.ms 2)

(* A mixed-workload tenant completes every request with the right answer. *)
let test_mixed_workloads () =
  let cfg = small_cfg ~n:1 () in
  let cfg =
    {
      cfg with
      Serve_config.tenants =
        List.map
          (fun ten ->
            {
              ten with
              Serve_config.t_workload =
                Mix
                  [
                    Ep Serve_config.tiny_ep;
                    Blk Serve_config.tiny_blk;
                    Kmn Serve_config.tiny_kmn;
                  ];
            })
          cfg.Serve_config.tenants;
    }
  in
  let r = Serve.run cfg in
  let tr = List.hd r.r_tenants in
  check_bool "completed some" true (tr.tr_completed > 0);
  check_int "no corruption" 0 tr.tr_corrupted

(* Graceful degradation: driven far past capacity, the bounded queue stays
   bounded, the overflow is rejected, stale requests are shed, and the
   latency of what IS admitted stays controlled — while the unshedded
   run's queue and sojourn blow up. *)
let test_overload_sheds () =
  let overload shed =
    {
      Serve_config.default with
      tenants = [ tenant "hot" ~rate:40.0 ~inflight:2 ~pending:(if shed then 8 else 0) () ];
      duration = ms 2;
      shed;
      shed_after = us 300;
    }
  in
  let with_shed = List.hd (Serve.run (overload true)).r_tenants in
  let without = List.hd (Serve.run (overload false)).r_tenants in
  (* Both saw the same open-loop traffic: arrivals don't care about
     admission. *)
  check_int "same offered load" without.tr_offered with_shed.tr_offered;
  check_bool "queue stayed bounded" true (with_shed.tr_queue_peak <= 8);
  check_bool "overflow was rejected" true (with_shed.tr_rejected > 0);
  check_bool "stale requests were shed" true (with_shed.tr_shed > 0);
  check_bool "unbounded queue grew past the bound" true
    (without.tr_queue_peak > 8);
  let p99 (tr : Serve.tenant_result) = Histogram.percentile tr.tr_sojourn 99.0 in
  check_bool "admitted p99 is controlled" true
    (p99 with_shed < p99 without);
  (* Everything admitted and not shed still finished correctly. *)
  check_int "drain split" with_shed.tr_admitted
    (with_shed.tr_completed + with_shed.tr_shed);
  check_int "no corruption under overload" 0 with_shed.tr_corrupted

(* Satellite: per-tenant RNG streams are independent — appending a third
   tenant leaves the first two tenants' request streams untouched. *)
let test_tenant_streams_independent () =
  let base = small_cfg ~n:2 () in
  let widened =
    {
      base with
      Serve_config.tenants =
        base.Serve_config.tenants @ [ tenant "t2" ~rate:5.0 () ];
    }
  in
  let r2 = Serve.run base in
  let r3 = Serve.run widened in
  List.iter2
    (fun (a : Serve.tenant_result) (b : Serve.tenant_result) ->
      check_int (a.tr_name ^ " offered unchanged") a.tr_offered b.tr_offered;
      check_int (a.tr_name ^ " completed unchanged") a.tr_completed
        b.tr_completed;
      check_bool (a.tr_name ^ " digest unchanged") true
        (Int64.equal a.tr_digest b.tr_digest))
    r2.r_tenants
    (List.filteri (fun i _ -> i < 2) r3.r_tenants)

(* Same config, same seed: bit-identical serve runs. *)
let test_run_deterministic () =
  let cfg = small_cfg () in
  let a = Serve.run cfg and b = Serve.run cfg in
  check_int "same sim time" a.r_sim_time b.r_sim_time;
  List.iter2
    (fun (x : Serve.tenant_result) (y : Serve.tenant_result) ->
      check_int "offered" x.tr_offered y.tr_offered;
      check_bool "digest" true (Int64.equal x.tr_digest y.tr_digest))
    a.r_tenants b.r_tenants

(* Arrival processes: deterministic under the seed, and with sane means. *)
let test_arrivals () =
  let gaps spec seed n =
    let a = Arrivals.create ~rng:(Rng.create ~seed) spec in
    List.init n (fun _ -> Arrivals.next_gap a)
  in
  let spec = Serve_config.Poisson 2.0 in
  Alcotest.(check (list int))
    "same seed, same gaps" (gaps spec 7 64) (gaps spec 7 64);
  let mean l =
    float_of_int (List.fold_left ( + ) 0 l) /. float_of_int (List.length l)
  in
  let m = mean (gaps spec 7 4096) in
  (* 2 req/ms => 500 µs mean gap. *)
  check_bool "poisson mean in range" true (m > 400_000.0 && m < 600_000.0);
  let mmpp =
    Serve_config.Mmpp
      { calm = 1.0; burst = 20.0; dwell_calm_ms = 0.5; dwell_burst_ms = 0.5 }
  in
  let mm = mean (gaps mmpp 7 4096) in
  (* Mean rate between the calm and burst extremes, not at either. *)
  check_bool "mmpp mean between regimes" true
    (mm < 900_000.0 && mm > 60_000.0);
  check_bool "gaps are positive" true
    (List.for_all (fun g -> g >= 1) (gaps mmpp 7 4096))

(* Weighted shares with a noisy-neighbour cap, observed mid-simulation. *)
let test_fairshare () =
  let eng = Engine.create () in
  let f = Fairshare.create eng ~bytes_per_us:1000.0 ~cap:0.6 in
  Fairshare.register f ~key:0 ~weight:3.0;
  Fairshare.register f ~key:1 ~weight:1.0;
  let observed = ref [] in
  Engine.spawn eng (fun () -> Fairshare.transfer f ~key:0 ~bytes:400_000);
  Engine.spawn eng (fun () -> Fairshare.transfer f ~key:1 ~bytes:400_000);
  Engine.spawn eng (fun () ->
      Engine.delay eng (us 10);
      observed :=
        [
          (Fairshare.rate f ~key:0, Fairshare.rate f ~key:1, Fairshare.backlogged f);
        ]);
  Engine.run_until_quiescent eng;
  (match !observed with
  | [ (r0, r1, backlogged) ] ->
      check_int "both backlogged" 2 backlogged;
      (* 3:1 weights over 1000 B/us, but the 3-weight tenant is capped at
         60%: 600 vs 250. *)
      check_bool "heavy tenant capped" true (abs_float (r0 -. 600.0) < 1e-6);
      check_bool "light tenant at its share" true
        (abs_float (r1 -. 250.0) < 1e-6)
  | _ -> Alcotest.fail "observer did not run");
  check_int "gate idle at the end" 0 (Fairshare.backlogged f);
  check_bool "shares were recomputed" true (Fairshare.recomputes f >= 4)

let test_fairshare_validation () =
  let eng = Engine.create () in
  Alcotest.check_raises "cap out of range"
    (Invalid_argument "Fairshare.create: cap must be in (0, 1]") (fun () ->
      ignore (Fairshare.create eng ~bytes_per_us:100.0 ~cap:1.5));
  let f = Fairshare.create eng ~bytes_per_us:100.0 ~cap:1.0 in
  Fairshare.register f ~key:0 ~weight:1.0;
  Alcotest.check_raises "duplicate key"
    (Invalid_argument "Fairshare.register: duplicate key") (fun () ->
      Fairshare.register f ~key:0 ~weight:1.0)

(* Cross-tenant fault isolation: crash one tenant's worker node mid-serve
   (Rehome policy, disjoint placements) and every OTHER tenant's completed
   count and checksum digest is identical to the no-crash baseline — and
   the victim still drains every admitted request. *)
let test_crash_isolation () =
  let cfg =
    {
      Serve_config.default with
      tenants =
        List.init 3 (fun i -> tenant (Printf.sprintf "t%d" i) ~rate:3.0 ());
      duration = ms 2;
      shed = false;
    }
  in
  let nodes = Serve.required_nodes cfg in
  let net () = crash_net ~nodes () in
  let proto = { Proto_config.default with on_crash = `Rehome } in
  let baseline = Serve.run ~net:(net ()) ~proto cfg in
  (* Tenant 0 owns nodes {0, 1}; node 1 is a pure worker node. *)
  let crashed =
    Serve.run ~net:(net ()) ~proto
      ~events:[ (ms 1, fun cl -> Dex_core.Cluster.crash_node cl ~node:1) ]
      cfg
  in
  let nth (r : Serve.result) i = List.nth r.r_tenants i in
  List.iter
    (fun i ->
      let b = nth baseline i and c = nth crashed i in
      check_int (b.tr_name ^ " offered unaffected") b.tr_offered c.tr_offered;
      check_int (b.tr_name ^ " completions unaffected") b.tr_completed
        c.tr_completed;
      check_bool (b.tr_name ^ " answers unaffected") true
        (Int64.equal b.tr_digest c.tr_digest);
      check_int (b.tr_name ^ " not corrupted") 0 c.tr_corrupted)
    [ 1; 2 ];
  let v = nth crashed 0 in
  check_int "victim still drains every admitted request" v.tr_admitted
    (v.tr_completed + v.tr_shed);
  check_bool "victim kept completing" true (v.tr_completed > 0)

(* Failover under load: with ha placement (thread-free service origins)
   and synchronous replication, crashing one tenant's origin node promotes
   the standby per in-flight request — and even the victim's answers are
   lossless, not just the neighbours'. *)
let test_failover_isolation () =
  let cfg =
    {
      Serve_config.default with
      tenants =
        List.init 2 (fun i -> tenant (Printf.sprintf "t%d" i) ~rate:3.0 ());
      duration = ms 2;
      shed = false;
      ha = true;
    }
  in
  let nodes = Serve.required_nodes cfg in
  let net () = crash_net ~nodes () in
  let baseline = Serve.run ~net:(net ()) cfg in
  (* Tenant 0: service origin node 0, workers {1, 2}; standby is the
     reserved last node. Kill the origin mid-window. *)
  let crashed =
    Serve.run ~net:(net ())
      ~events:[ (ms 1, fun cl -> Dex_core.Cluster.crash_node cl ~node:0) ]
      cfg
  in
  List.iter2
    (fun (b : Serve.tenant_result) (c : Serve.tenant_result) ->
      check_int (b.tr_name ^ " completions lossless") b.tr_completed
        c.tr_completed;
      check_bool (b.tr_name ^ " answers lossless") true
        (Int64.equal b.tr_digest c.tr_digest);
      check_int (b.tr_name ^ " nothing corrupted") 0 c.tr_corrupted)
    baseline.r_tenants crashed.r_tenants

let () =
  Alcotest.run "serve"
    [
      ( "admission",
        [
          Alcotest.test_case "accounting balances" `Quick test_accounting;
          Alcotest.test_case "mixed workloads" `Quick test_mixed_workloads;
          Alcotest.test_case "overload sheds gracefully" `Quick
            test_overload_sheds;
        ] );
      ( "traffic",
        [
          Alcotest.test_case "tenant streams independent" `Quick
            test_tenant_streams_independent;
          Alcotest.test_case "runs deterministic" `Quick test_run_deterministic;
          Alcotest.test_case "arrival processes" `Quick test_arrivals;
        ] );
      ( "fairshare",
        [
          Alcotest.test_case "weighted shares with cap" `Quick test_fairshare;
          Alcotest.test_case "validation" `Quick test_fairshare_validation;
        ] );
      ( "isolation",
        [
          Alcotest.test_case "crash isolation" `Quick test_crash_isolation;
          Alcotest.test_case "failover isolation" `Quick
            test_failover_isolation;
        ] );
    ]
