(* Tests for the virtual-memory substrate: page arithmetic, radix tree,
   VMA tree, page tables, ownership directory, page store, fault table and
   allocator. *)

open Dex_mem

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Page arithmetic *)

let test_page_arith () =
  check_int "page of 0" 0 (Page.page_of_addr 0);
  check_int "page of 4095" 0 (Page.page_of_addr 4095);
  check_int "page of 4096" 1 (Page.page_of_addr 4096);
  check_int "base" 8192 (Page.base_of_page 2);
  check_int "offset" 123 (Page.offset_in_page (8192 + 123));
  check_int "align up" 8192 (Page.align_up 4097);
  check_int "align up aligned" 4096 (Page.align_up 4096);
  check_int "align down" 4096 (Page.align_down 8191);
  check_bool "aligned" true (Page.is_aligned 8192);
  check_bool "unaligned" false (Page.is_aligned 8193)

let test_page_ranges () =
  let first, last = Page.pages_of_range 4000 ~len:200 in
  check_int "straddles boundary first" 0 first;
  check_int "straddles boundary last" 1 last;
  check_int "count single" 1 (Page.count_pages 0 ~len:4096);
  check_int "count straddle" 2 (Page.count_pages 4095 ~len:2);
  Alcotest.check_raises "zero len"
    (Invalid_argument "Page.pages_of_range: len must be positive") (fun () ->
      ignore (Page.pages_of_range 0 ~len:0))

let prop_page_range_count =
  QCheck.Test.make ~name:"page range count matches enumeration" ~count:300
    QCheck.(pair (int_bound 1_000_000) (int_range 1 100_000))
    (fun (addr, len) ->
      let first, last = Page.pages_of_range addr ~len in
      Page.count_pages addr ~len = last - first + 1
      && first = addr / 4096
      && last = (addr + len - 1) / 4096)

(* ------------------------------------------------------------------ *)
(* Radix tree *)

let test_radix_basic () =
  let t = Radix_tree.create () in
  check_bool "initially absent" false (Radix_tree.mem t 42);
  Radix_tree.set t 42 "a";
  Radix_tree.set t 43 "b";
  Radix_tree.set t 42 "a2";
  Alcotest.(check (option string)) "get" (Some "a2") (Radix_tree.find t 42);
  check_int "length counts keys once" 2 (Radix_tree.length t);
  Radix_tree.remove t 42;
  check_bool "removed" false (Radix_tree.mem t 42);
  check_int "length after remove" 1 (Radix_tree.length t);
  Radix_tree.remove t 42 (* idempotent *);
  check_int "double remove" 1 (Radix_tree.length t)

let test_radix_sparse_keys () =
  let t = Radix_tree.create () in
  let keys = [ 0; 1; 511; 512; 513; 1 lsl 20; (1 lsl 36) - 1 ] in
  List.iteri (fun i k -> Radix_tree.set t k i) keys;
  List.iteri
    (fun i k ->
      Alcotest.(check (option int))
        (Printf.sprintf "key %d" k)
        (Some i) (Radix_tree.find t k))
    keys;
  Alcotest.check_raises "key out of range"
    (Invalid_argument "Radix_tree.set: key 68719476736 out of range")
    (fun () -> Radix_tree.set t (1 lsl 36) 0)

let test_radix_iter_sorted () =
  let t = Radix_tree.create () in
  List.iter (fun k -> Radix_tree.set t k ()) [ 77; 3; 512; 100_000; 4 ];
  let keys = ref [] in
  Radix_tree.iter t (fun k () -> keys := k :: !keys);
  Alcotest.(check (list int)) "ascending order" [ 3; 4; 77; 512; 100_000 ]
    (List.rev !keys)

let test_radix_update () =
  let t = Radix_tree.create () in
  let v = Radix_tree.update t 5 ~default:(fun () -> 0) (fun x -> x + 1) in
  check_int "default then f" 1 v;
  let v = Radix_tree.update t 5 ~default:(fun () -> 0) (fun x -> x + 1) in
  check_int "update existing" 2 v

let prop_radix_model =
  QCheck.Test.make ~name:"radix tree behaves like a hashtable" ~count:200
    QCheck.(list (pair (int_bound 10_000) (option (int_bound 100))))
    (fun ops ->
      let t = Radix_tree.create () in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (k, v) ->
          match v with
          | Some v ->
              Radix_tree.set t k v;
              Hashtbl.replace model k v
          | None ->
              Radix_tree.remove t k;
              Hashtbl.remove model k)
        ops;
      Hashtbl.length model = Radix_tree.length t
      && Hashtbl.fold
           (fun k v ok -> ok && Radix_tree.find t k = Some v)
           model true)

(* ------------------------------------------------------------------ *)
(* VMA tree *)

let page = 4096

let vma start pages perm tag =
  Vma.make ~start:(start * page) ~len:(pages * page) ~perm ~tag

let test_vma_tree_find () =
  let t = Vma_tree.create () in
  Vma_tree.insert t (vma 10 5 Perm.rw "heap");
  Vma_tree.insert t (vma 100 2 Perm.ro "text");
  (match Vma_tree.find t (12 * page) with
  | Some v -> Alcotest.(check string) "tag" "heap" v.Vma.tag
  | None -> Alcotest.fail "expected heap vma");
  check_bool "gap is unmapped" true (Vma_tree.find t (50 * page) = None);
  check_bool "before first" true (Vma_tree.find t 0 = None);
  check_bool "end exclusive" true (Vma_tree.find t (15 * page) = None)

let test_vma_tree_overlap_rejected () =
  let t = Vma_tree.create () in
  Vma_tree.insert t (vma 10 5 Perm.rw "a");
  Alcotest.check_raises "overlap"
    (Invalid_argument "Vma_tree.insert: overlapping VMA") (fun () ->
      Vma_tree.insert t (vma 14 2 Perm.rw "b"));
  (* Adjacent is fine. *)
  Vma_tree.insert t (vma 15 2 Perm.rw "c");
  check_int "two vmas" 2 (Vma_tree.count t)

let test_vma_tree_remove_splits () =
  let t = Vma_tree.create () in
  Vma_tree.insert t (vma 10 10 Perm.rw "big");
  let removed = Vma_tree.remove_range t ~start:(13 * page) ~len:(2 * page) in
  check_int "one removed fragment" 1 (List.length removed);
  Vma_tree.check_invariants t;
  check_int "split into two" 2 (Vma_tree.count t);
  check_bool "hole unmapped" true (Vma_tree.find t (13 * page) = None);
  check_bool "left intact" true (Vma_tree.find t (10 * page) <> None);
  check_bool "right intact" true (Vma_tree.find t (16 * page) <> None)

let test_vma_tree_remove_spanning () =
  let t = Vma_tree.create () in
  Vma_tree.insert t (vma 10 2 Perm.rw "a");
  Vma_tree.insert t (vma 12 2 Perm.rw "b");
  Vma_tree.insert t (vma 20 2 Perm.rw "c");
  let removed = Vma_tree.remove_range t ~start:(11 * page) ~len:(2 * page) in
  check_int "two fragments removed" 2 (List.length removed);
  Vma_tree.check_invariants t;
  (* a truncated to one page, b truncated to one page, c untouched. *)
  check_int "three vmas remain" 3 (Vma_tree.count t);
  check_bool "removed middle" true (Vma_tree.find t (11 * page) = None);
  check_bool "b tail remains" true (Vma_tree.find t (13 * page) <> None)

let test_vma_tree_protect () =
  let t = Vma_tree.create () in
  Vma_tree.insert t (vma 10 4 Perm.rw "a");
  let changed =
    Vma_tree.protect_range t ~start:(11 * page) ~len:(2 * page) ~perm:Perm.ro
  in
  check_int "one changed" 1 (List.length changed);
  Vma_tree.check_invariants t;
  check_int "split into three" 3 (Vma_tree.count t);
  (match Vma_tree.find t (11 * page) with
  | Some v -> check_bool "downgraded" true (v.Vma.perm = Perm.ro)
  | None -> Alcotest.fail "vma missing");
  match Vma_tree.find t (10 * page) with
  | Some v -> check_bool "left unchanged" true (v.Vma.perm = Perm.rw)
  | None -> Alcotest.fail "vma missing"

let prop_vma_tree_invariant =
  (* Random mixes of insert/remove keep the tree sorted and disjoint. *)
  QCheck.Test.make ~name:"vma tree stays disjoint under random ops" ~count:200
    QCheck.(
      list
        (pair bool (pair (int_range 0 200) (int_range 1 20))))
    (fun ops ->
      let t = Vma_tree.create () in
      List.iter
        (fun (is_insert, (start, pages)) ->
          if is_insert then
            try Vma_tree.insert t (vma start pages Perm.rw "x")
            with Invalid_argument _ -> ()
          else
            ignore
              (Vma_tree.remove_range t ~start:(start * page)
                 ~len:(pages * page)))
        ops;
      Vma_tree.check_invariants t;
      true)

(* ------------------------------------------------------------------ *)
(* Page table *)

let test_page_table () =
  let pt = Page_table.create () in
  check_bool "invalid initially" false (Page_table.allows pt 7 Perm.Read);
  Page_table.set pt 7 Perm.Read;
  check_bool "read ok" true (Page_table.allows pt 7 Perm.Read);
  check_bool "write needs write" false (Page_table.allows pt 7 Perm.Write);
  Page_table.set pt 7 Perm.Write;
  check_bool "write ok" true (Page_table.allows pt 7 Perm.Write);
  check_bool "write implies read" true (Page_table.allows pt 7 Perm.Read);
  Page_table.downgrade pt 7;
  check_bool "downgraded" false (Page_table.allows pt 7 Perm.Write);
  Page_table.invalidate pt 7;
  check_bool "invalidated" false (Page_table.allows pt 7 Perm.Read);
  Page_table.downgrade pt 7 (* no-op on absent *)

let test_page_table_zap_range () =
  let pt = Page_table.create () in
  for p = 10 to 20 do
    Page_table.set pt p Perm.Write
  done;
  let n = Page_table.zap_range pt ~first:12 ~last:15 in
  check_int "zapped" 4 n;
  check_int "remaining" 7 (Page_table.count pt);
  check_bool "outside intact" true (Page_table.allows pt 11 Perm.Write);
  check_bool "inside gone" false (Page_table.allows pt 13 Perm.Read)

(* ------------------------------------------------------------------ *)
(* Directory *)

let test_directory_default_origin () =
  let d = Directory.create ~origin:0 in
  (match Directory.state d 99 with
  | Directory.Exclusive 0 -> ()
  | _ -> Alcotest.fail "untracked pages belong to the origin");
  check_int "nothing tracked" 0 (Directory.tracked_pages d)

let test_directory_transitions () =
  let d = Directory.create ~origin:0 in
  Directory.set_shared d 5 (Node_set.of_list [ 0; 2 ]);
  Directory.add_reader d 5 3;
  (match Directory.state d 5 with
  | Directory.Shared readers ->
      Alcotest.(check (list int)) "readers" [ 0; 2; 3 ]
        (Node_set.to_list readers)
  | _ -> Alcotest.fail "expected shared");
  Directory.set_exclusive d 5 2;
  (match Directory.state d 5 with
  | Directory.Exclusive 2 -> ()
  | _ -> Alcotest.fail "expected exclusive 2");
  check_bool "valid copy at writer" true (Directory.has_valid_copy d 5 2);
  check_bool "no copy elsewhere" false (Directory.has_valid_copy d 5 0);
  Alcotest.check_raises "add_reader under exclusive"
    (Invalid_argument "Directory.add_reader: page exclusively owned elsewhere")
    (fun () -> Directory.add_reader d 5 1);
  Directory.check_invariants d

let test_directory_busy_lock () =
  let d = Directory.create ~origin:0 in
  check_bool "lock" true (Directory.try_lock d 9);
  check_bool "second lock NACKed" false (Directory.try_lock d 9);
  check_bool "locked" true (Directory.locked d 9);
  Directory.unlock d 9;
  check_bool "relock after unlock" true (Directory.try_lock d 9);
  Directory.unlock d 9;
  Alcotest.check_raises "double unlock"
    (Invalid_argument "Directory.unlock: page not locked") (fun () ->
      Directory.unlock d 9)

let prop_directory_invariants =
  QCheck.Test.make ~name:"directory invariants under random transitions"
    ~count:300
    QCheck.(list (pair (int_bound 50) (pair bool (int_bound 7))))
    (fun ops ->
      let d = Directory.create ~origin:0 in
      List.iter
        (fun (p, (exclusive, node)) ->
          if exclusive then Directory.set_exclusive d p node
          else
            match Directory.state d p with
            | Directory.Shared _ -> Directory.add_reader d p node
            | Directory.Exclusive owner ->
                Directory.set_shared d p (Node_set.of_list [ owner; node ]))
        ops;
      Directory.check_invariants d;
      true)

(* ------------------------------------------------------------------ *)
(* Node set *)

let test_node_set () =
  let s = Node_set.of_list [ 3; 1; 4; 1 ] in
  check_int "cardinal dedups" 3 (Node_set.cardinal s);
  check_bool "mem" true (Node_set.mem s 4);
  check_bool "not mem" false (Node_set.mem s 0);
  let s = Node_set.remove s 4 in
  Alcotest.(check (list int)) "sorted list" [ 1; 3 ] (Node_set.to_list s);
  check_bool "empty" true (Node_set.is_empty Node_set.empty);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Node_set: node id out of range") (fun () ->
      ignore (Node_set.add Node_set.empty 63))

(* ------------------------------------------------------------------ *)
(* Page store *)

let test_page_store_rw () =
  let ps = Page_store.create () in
  check_int "zero page" 0 (Page_store.read_byte ps 3 ~offset:100);
  Page_store.write_i64 ps 3 ~offset:8 0x1122334455667788L;
  Alcotest.(check int64) "read back" 0x1122334455667788L
    (Page_store.read_i64 ps 3 ~offset:8);
  Page_store.write_byte ps 3 ~offset:0 0xAB;
  check_int "byte" 0xAB (Page_store.read_byte ps 3 ~offset:0);
  check_int "materialized" 1 (Page_store.materialized ps)

let test_page_store_ship () =
  let a = Page_store.create () and b = Page_store.create () in
  Page_store.write_i64 a 7 ~offset:0 42L;
  let data = Page_store.snapshot a 7 in
  Page_store.install b 7 data;
  Alcotest.(check int64) "installed" 42L (Page_store.read_i64 b 7 ~offset:0);
  (* Snapshot is a copy: later writes at the source don't leak. *)
  Page_store.write_i64 a 7 ~offset:0 43L;
  Alcotest.(check int64) "no aliasing" 42L (Page_store.read_i64 b 7 ~offset:0);
  Page_store.drop b 7;
  check_int "dropped" 0 (Page_store.materialized b)

let test_page_store_bounds () =
  let ps = Page_store.create () in
  Alcotest.check_raises "offset out of page"
    (Invalid_argument "Page_store.read_i64: offset out of page") (fun () ->
      ignore (Page_store.read_i64 ps 0 ~offset:4090));
  Alcotest.check_raises "misaligned"
    (Invalid_argument "Page_store.read_i64: misaligned offset") (fun () ->
      ignore (Page_store.read_i64 ps 0 ~offset:4))

(* ------------------------------------------------------------------ *)
(* Fault table *)

let test_fault_table_coalescing () =
  let e = Dex_sim.Engine.create () in
  let ft = Fault_table.create e () in
  let outcomes = ref [] in
  for i = 1 to 3 do
    Dex_sim.Engine.spawn e (fun () ->
        match Fault_table.enter ft ~vpn:9 ~access:Perm.Read with
        | Fault_table.Leader ->
            Dex_sim.Engine.delay e 1000;
            let followers = Fault_table.finish ft ~vpn:9 "done" in
            outcomes := Printf.sprintf "leader%d/%d" i followers :: !outcomes
        | Fault_table.Follower o ->
            outcomes := Printf.sprintf "follower%d:%s" i o :: !outcomes
        | Fault_table.Conflict -> Alcotest.fail "unexpected conflict")
  done;
  Dex_sim.Engine.run_until_quiescent e;
  Alcotest.(check (list string))
    "one leader, two followers"
    [ "follower2:done"; "follower3:done"; "leader1/2" ]
    (List.sort compare !outcomes);
  check_int "coalesced counter" 2 (Fault_table.coalesced_total ft)

let test_fault_table_conflict () =
  let e = Dex_sim.Engine.create () in
  let ft = Fault_table.create e () in
  let events = ref [] in
  Dex_sim.Engine.spawn e (fun () ->
      match Fault_table.enter ft ~vpn:9 ~access:Perm.Read with
      | Fault_table.Leader ->
          Dex_sim.Engine.delay e 1000;
          ignore (Fault_table.finish ft ~vpn:9 ());
          events := "leader-done" :: !events
      | _ -> Alcotest.fail "expected leader");
  Dex_sim.Engine.spawn e (fun () ->
      match Fault_table.enter ft ~vpn:9 ~access:Perm.Write with
      | Fault_table.Conflict -> events := "conflict-retry" :: !events
      | _ -> Alcotest.fail "expected conflict");
  Dex_sim.Engine.run_until_quiescent e;
  Alcotest.(check (list string))
    "conflicter woken after leader"
    [ "leader-done"; "conflict-retry" ]
    (List.rev !events)

let test_fault_table_independent_pages () =
  let e = Dex_sim.Engine.create () in
  let ft = Fault_table.create e () in
  Dex_sim.Engine.spawn e (fun () ->
      (match Fault_table.enter ft ~vpn:1 ~access:Perm.Read with
      | Fault_table.Leader -> ()
      | _ -> Alcotest.fail "expected leader p1");
      (match Fault_table.enter ft ~vpn:2 ~access:Perm.Read with
      | Fault_table.Leader -> ()
      | _ -> Alcotest.fail "expected leader p2");
      check_int "two ongoing" 2 (Fault_table.ongoing ft);
      ignore (Fault_table.finish ft ~vpn:1 ());
      ignore (Fault_table.finish ft ~vpn:2 ());
      check_int "none ongoing" 0 (Fault_table.ongoing ft));
  Dex_sim.Engine.run_until_quiescent e

let test_fault_table_finish_without_enter () =
  let e = Dex_sim.Engine.create () in
  let ft = Fault_table.create e () in
  Alcotest.check_raises "finish without enter"
    (Invalid_argument "Fault_table.finish: no ongoing fault") (fun () ->
      ignore (Fault_table.finish ft ~vpn:5 ()))

(* ------------------------------------------------------------------ *)
(* Allocator / layout *)

let test_allocator_packing () =
  let a = Allocator.create () in
  let x = Allocator.malloc a ~bytes:100 ~tag:"x" in
  let y = Allocator.malloc a ~bytes:100 ~tag:"y" in
  check_bool "malloc packs on the same page" true
    (Page.page_of_addr x = Page.page_of_addr y);
  let z = Allocator.memalign a ~align:4096 ~bytes:100 ~tag:"z" in
  check_bool "memalign page-aligned" true (Page.is_aligned z);
  check_bool "memalign isolates" true
    (Page.page_of_addr z <> Page.page_of_addr y)

let test_allocator_object_registry () =
  let a = Allocator.create () in
  let x = Allocator.malloc a ~bytes:256 ~tag:"centers" in
  (match Allocator.object_at a (x + 128) with
  | Some ("centers", base, 256) -> check_int "base" x base
  | _ -> Alcotest.fail "object not found");
  check_bool "gap has no object" true (Allocator.object_at a (x + 4096) = None)

let test_allocator_static_vs_heap () =
  let a = Allocator.create () in
  let g = Allocator.alloc_static a ~bytes:64 ~tag:"flag" () in
  check_bool "globals segment" true
    (g >= Layout.globals_base && g < Layout.globals_base + Layout.globals_size);
  let h = Allocator.malloc a ~bytes:64 ~tag:"buf" in
  check_bool "heap segment" true
    (h >= Layout.heap_base && h < Layout.heap_base + Layout.heap_size)

let test_allocator_tls_per_thread () =
  let a = Allocator.create () in
  let t0 = Allocator.tls_alloc a ~tid:0 ~bytes:64 ~tag:"counter" in
  let t1 = Allocator.tls_alloc a ~tid:1 ~bytes:64 ~tag:"counter" in
  check_bool "different pages per thread" true
    (Page.page_of_addr t0 <> Page.page_of_addr t1);
  check_bool "inside slot 0" true
    (t0 >= Layout.tls_for ~tid:0
    && t0 < Layout.tls_for ~tid:0 + Layout.tls_slot_size)

let test_layout_stacks_disjoint () =
  let s0 = Layout.stack_for ~tid:0 and s1 = Layout.stack_for ~tid:1 in
  check_bool "no overlap" true (s0 + Layout.stack_size <= s1);
  check_int "stack top" (s0 + Layout.stack_size) (Layout.stack_top ~tid:0);
  Alcotest.check_raises "tid out of range"
    (Invalid_argument "Layout: bad thread id") (fun () ->
      ignore (Layout.stack_for ~tid:Layout.max_threads))

let test_perm_downgrade_table () =
  let d o n = Perm.is_downgrade ~old_perm:o ~new_perm:n in
  check_bool "rw->ro downgrades" true (d Perm.rw Perm.ro);
  check_bool "rw->none downgrades" true (d Perm.rw Perm.none);
  check_bool "ro->rw permissive" false (d Perm.ro Perm.rw);
  check_bool "ro->ro unchanged" false (d Perm.ro Perm.ro);
  check_bool "none->ro permissive" false (d Perm.none Perm.ro)

let test_allocator_exhaustion () =
  let a = Allocator.create () in
  Alcotest.check_raises "global segment bounded"
    (Failure "Allocator: global segment exhausted") (fun () ->
      for _ = 1 to 100 do
        ignore
          (Allocator.alloc_static a ~bytes:(Layout.globals_size / 10)
             ~tag:"big" ())
      done);
  Alcotest.check_raises "TLS block bounded"
    (Failure "Allocator: TLS block exhausted") (fun () ->
      for _ = 1 to 100 do
        ignore
          (Allocator.tls_alloc a ~tid:0 ~bytes:(Layout.tls_slot_size / 10)
             ~tag:"big")
      done)

let test_radix_fold_ordered () =
  let t = Radix_tree.create () in
  List.iter (fun k -> Radix_tree.set t k (k * 2)) [ 9; 1; 5 ];
  let acc = Radix_tree.fold t ~init:[] ~f:(fun k v acc -> (k, v) :: acc) in
  Alcotest.(check (list (pair int int)))
    "fold visits in key order" [ (9, 18); (5, 10); (1, 2) ] acc

let qsuite = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "dex_mem"
    [
      ( "page",
        [
          Alcotest.test_case "arithmetic" `Quick test_page_arith;
          Alcotest.test_case "ranges" `Quick test_page_ranges;
        ]
        @ qsuite [ prop_page_range_count ] );
      ( "radix_tree",
        [
          Alcotest.test_case "basic ops" `Quick test_radix_basic;
          Alcotest.test_case "sparse keys" `Quick test_radix_sparse_keys;
          Alcotest.test_case "sorted iteration" `Quick test_radix_iter_sorted;
          Alcotest.test_case "update" `Quick test_radix_update;
        ]
        @ qsuite [ prop_radix_model ] );
      ( "vma_tree",
        [
          Alcotest.test_case "find" `Quick test_vma_tree_find;
          Alcotest.test_case "overlap rejected" `Quick
            test_vma_tree_overlap_rejected;
          Alcotest.test_case "remove splits" `Quick test_vma_tree_remove_splits;
          Alcotest.test_case "remove spanning" `Quick
            test_vma_tree_remove_spanning;
          Alcotest.test_case "protect splits" `Quick test_vma_tree_protect;
        ]
        @ qsuite [ prop_vma_tree_invariant ] );
      ( "page_table",
        [
          Alcotest.test_case "access levels" `Quick test_page_table;
          Alcotest.test_case "zap range" `Quick test_page_table_zap_range;
        ] );
      ( "directory",
        [
          Alcotest.test_case "origin default" `Quick
            test_directory_default_origin;
          Alcotest.test_case "transitions" `Quick test_directory_transitions;
          Alcotest.test_case "busy lock" `Quick test_directory_busy_lock;
        ]
        @ qsuite [ prop_directory_invariants ] );
      ("node_set", [ Alcotest.test_case "set ops" `Quick test_node_set ]);
      ( "page_store",
        [
          Alcotest.test_case "read/write" `Quick test_page_store_rw;
          Alcotest.test_case "snapshot/install" `Quick test_page_store_ship;
          Alcotest.test_case "bounds" `Quick test_page_store_bounds;
        ] );
      ( "fault_table",
        [
          Alcotest.test_case "leader/follower coalescing" `Quick
            test_fault_table_coalescing;
          Alcotest.test_case "access-type conflict" `Quick
            test_fault_table_conflict;
          Alcotest.test_case "independent pages" `Quick
            test_fault_table_independent_pages;
          Alcotest.test_case "finish without enter" `Quick
            test_fault_table_finish_without_enter;
        ] );
      ( "allocator",
        [
          Alcotest.test_case "packing vs memalign" `Quick
            test_allocator_packing;
          Alcotest.test_case "object registry" `Quick
            test_allocator_object_registry;
          Alcotest.test_case "segments" `Quick test_allocator_static_vs_heap;
          Alcotest.test_case "TLS per thread" `Quick
            test_allocator_tls_per_thread;
          Alcotest.test_case "stack layout" `Quick test_layout_stacks_disjoint;
          Alcotest.test_case "exhaustion" `Quick test_allocator_exhaustion;
        ] );
      ( "misc",
        [
          Alcotest.test_case "perm downgrade table" `Quick
            test_perm_downgrade_table;
          Alcotest.test_case "radix fold ordered" `Quick test_radix_fold_ordered;
        ] );
    ]
