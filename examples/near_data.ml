(* Scheduling extensions: computation-to-data affinity and offloading.

   The paper's conclusion sketches three uses of DeX's relocation
   capability; this example demonstrates two. A dataset is produced on
   node 2; a worker thread then asks the affinity scheduler where the data
   lives and migrates itself there before processing it — turning every
   would-be remote fault into a local hit. Finally a hot computation is
   offloaded to the least-loaded node and comes back with the result,
   reading its input through the delegated file API.

   Run with: dune exec examples/near_data.exe *)

open Dex_core
open Dex_sched

let () =
  let cl = Dex.cluster ~nodes:4 () in
  ignore
    (Dex.run cl (fun proc main ->
         let coh = Process.coherence proc in
         let data = Process.memalign main ~align:4096 ~bytes:(64 * 4096)
             ~tag:"dataset" in
         (* Produce the dataset on node 2. *)
         let producer =
           Process.spawn proc (fun th ->
               Process.migrate th 2;
               Process.write th ~site:"produce" data ~len:(64 * 4096))
         in
         Process.join producer;
         let ranges = [ (data, 64 * 4096) ] in
         let counts = Affinity.owned_pages coh ~ranges in
         Format.printf "pages per node after production: %s@."
           (String.concat " "
              (Array.to_list (Array.map string_of_int counts)));
         (* A consumer follows the data instead of pulling it. *)
         let consumer =
           Process.spawn proc (fun th ->
               let t0 = Dex_sim.Engine.now (Cluster.engine cl) in
               let node = Affinity.migrate_to_data th ~ranges in
               Process.read th ~site:"consume" data ~len:(64 * 4096);
               Format.printf
                 "consumer migrated to node %d and scanned locally in %a@."
                 node Dex_sim.Time_ns.pp
                 (Dex_sim.Engine.now (Cluster.engine cl) - t0))
         in
         Process.join consumer;
         (* Offload a computation to whichever node is idle. *)
         let fd = Process.file_open main "weights.bin" in
         Process.file_write main ~fd ~bytes:65536;
         Process.file_close main ~fd;
         let worker =
           Process.spawn proc (fun th ->
               let result, node =
                 Offload.run_on_least_loaded th (fun () ->
                     let fd = Process.file_open th "weights.bin" in
                     let got = Process.file_read th ~fd ~bytes:65536 in
                     Process.file_close th ~fd;
                     Process.compute th ~ns:(Dex_sim.Time_ns.us 250);
                     got)
               in
               Format.printf
                 "offloaded computation ran on node %d over %d bytes of \
                  delegated file input@."
                 node result)
         in
         Process.join worker));
  Format.printf "total simulated time: %a@.@." Dex_sim.Time_ns.pp
    (Dex.elapsed cl);
  (* Third conclusion scenario: energy over heterogeneous power profiles
     (two Xeons, two efficiency nodes). *)
  let profiles =
    [|
      Energy.xeon_profile; Energy.xeon_profile; Energy.efficiency_profile;
      Energy.efficiency_profile;
    |]
  in
  Energy.pp_report ~profiles Format.std_formatter cl;
  Format.printf "run energy: %.4f J; an energy-aware scheduler would place \
                 the next thread on node %d@."
    (Energy.joules cl ~profiles)
    (Energy.cheapest_node cl ~profiles)
