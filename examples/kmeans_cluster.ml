(* k-means over the rack: scaling a scale-ready application.

   Runs KMN at increasing node counts and shows the Figure 2 story in
   miniature: the naive port collapses under false sharing of the center
   accumulators while the optimized version scales.

   Run with: dune exec examples/kmeans_cluster.exe *)

module A = Dex_apps.App_common

let params =
  {
    Dex_apps.Kmn.points = 30_000;
    clusters = 16;
    iterations = 5;
    ns_per_point = 800.0;
    chunk_points = 32;
  }

let () =
  let centers = Dex_apps.Kmn.reference_centers params ~seed:13 in
  Format.printf "k-means: %d points, %d clusters, %d iterations@."
    params.Dex_apps.Kmn.points params.Dex_apps.Kmn.clusters
    params.Dex_apps.Kmn.iterations;
  Format.printf "first reference center: (%.3f, %.3f, %.3f)@.@." centers.(0)
    centers.(1) centers.(2);
  let baseline = Dex_apps.Kmn.run ~nodes:1 ~variant:A.Baseline ~params () in
  Format.printf "%-22s %8.2f ms@." "single machine"
    (Dex_sim.Time_ns.to_ms_f baseline.A.sim_time);
  List.iter
    (fun nodes ->
      List.iter
        (fun variant ->
          let r = Dex_apps.Kmn.run ~nodes ~variant ~params () in
          assert (r.A.checksum = baseline.A.checksum);
          Format.printf "%-22s %8.2f ms  (%.2fx, %d faults)@."
            (Printf.sprintf "%d nodes, %s" nodes (A.variant_name variant))
            (Dex_sim.Time_ns.to_ms_f r.A.sim_time)
            (float_of_int baseline.A.sim_time /. float_of_int r.A.sim_time)
            r.A.faults)
        [ A.Initial; A.Optimized ])
    [ 2; 4 ];
  Format.printf "@.same centers everywhere — the DSM is transparent.@."
