(* Quickstart: the one-line conversion DeX promises.

   Four threads are spawned on the origin node of a 4-node rack. Each
   relocates itself to its own node with a single [migrate] call, works on
   shared memory as if nothing happened — including taking a mutex whose
   futex is transparently delegated back to the origin — and migrates
   home.

   Run with: dune exec examples/quickstart.exe *)

open Dex_core

let () =
  let cluster = Dex.cluster ~nodes:4 () in
  let proc =
    Dex.run cluster (fun proc main ->
        let counter = Process.malloc main ~bytes:8 ~tag:"counter" in
        let mutex = Sync.Mutex.create proc () in
        let threads =
          List.init 4 (fun node ->
              Process.spawn proc (fun th ->
                  (* The one-line conversion: relocate this thread. *)
                  Process.migrate th node;
                  Format.printf "thread %d now runs on node %d@."
                    (Process.tid th) (Process.location th);
                  (* Shared memory and pthread-style locking, unchanged. *)
                  Sync.Mutex.with_lock th mutex (fun () ->
                      let v = Process.load th counter in
                      Process.store th counter (Int64.add v 1L));
                  Process.migrate th (Process.origin proc)))
        in
        List.iter Process.join threads;
        Format.printf "final counter: %Ld (expected 4)@."
          (Process.load main counter))
  in
  Format.printf "simulated time: %a@." Dex_sim.Time_ns.pp (Dex.elapsed cluster);
  Format.printf "forward migrations: %d@."
    (List.length
       (List.filter
          (fun r -> r.Process.m_direction = `Forward)
          (Process.migration_log proc)))
