(* Word count across machine boundaries, with the profiling workflow.

   A GRP-style scan: worker threads distributed over the rack count key
   occurrences in a text served from the NFS share. The first run uses the
   naive porting (per-match updates to one global counter); the page-fault
   profiler then shows exactly which source site and which object caused
   the cross-node traffic — the workflow of §IV — and the fixed version
   runs visibly faster.

   Run with: dune exec examples/wordcount.exe *)

open Dex_core
module A = Dex_apps.App_common

let params =
  {
    Dex_apps.Grp.text_bytes = 4 * 1024 * 1024;
    key_interval = 4096;
    cpu_ns_per_byte = 10.0;
    chunk_bytes = 512 * 1024;
  }

let run variant = Dex_apps.Grp.run ~nodes:4 ~variant ~params ()

let () =
  Format.printf "== naive port (per-match global updates) ==@.";
  let initial = run A.Initial in
  Format.printf "%a@." A.pp_result initial;
  Format.printf "@.== optimized (locally staged counts) ==@.";
  let optimized = run A.Optimized in
  Format.printf "%a@." A.pp_result optimized;
  Format.printf "@.speedup from the fix: %.2fx (matches found: %Ld)@."
    (float_of_int initial.A.sim_time /. float_of_int optimized.A.sim_time)
    optimized.A.checksum;
  (* Show the §IV profiling workflow on a small dedicated run. *)
  Format.printf "@.== page-fault profile of the naive port ==@.";
  let cl = Dex.cluster ~nodes:2 () in
  let events = ref [] in
  let alloc = ref None in
  ignore
    (Dex.run cl (fun proc main ->
         alloc := Some (Process.allocator proc);
         let trace = Dex_profile.Trace.attach (Process.coherence proc) in
         let total = Process.malloc main ~bytes:8 ~tag:"wordcount.total" in
         let start = Sync.Barrier.create proc ~parties:2 () in
         let th =
           Process.spawn proc (fun th ->
               Process.migrate th 1;
               Sync.Barrier.await th start;
               for _ = 1 to 30 do
                 ignore
                   (Process.fetch_add th ~site:"wordcount.scan_loop" total 1L);
                 Process.compute th ~ns:(Dex_sim.Time_ns.us 20)
               done)
         in
         Sync.Barrier.await main start;
         for _ = 1 to 30 do
           ignore (Process.fetch_add main ~site:"wordcount.scan_loop" total 1L);
           Process.compute main ~ns:(Dex_sim.Time_ns.us 20)
         done;
         Process.join th;
         events := Dex_profile.Trace.events trace));
  Dex_profile.Report.pp_summary ?alloc:!alloc Format.std_formatter !events
