(* Distributed breadth-first search over an R-MAT graph.

   Demonstrates the Polymer-style graph workload: a level-synchronous BFS
   whose threads are spread across the rack, comparing the naive port with
   the per-node-packed optimized version, and reporting the protocol
   statistics that explain the difference.

   Run with: dune exec examples/graph_bfs.exe *)

module A = Dex_apps.App_common

let params =
  {
    Dex_apps.Bfs.scale = 14;
    edge_factor = 12;
    ns_per_edge = 12.0;
    max_iters = 64;
    sample_pages = 32;
  }

let () =
  let g = Dex_apps.Workloads.rmat ~seed:31 ~vertices:(1 lsl params.Dex_apps.Bfs.scale)
      ~edges:((1 lsl params.Dex_apps.Bfs.scale) * params.Dex_apps.Bfs.edge_factor)
  in
  Format.printf "graph: %d vertices, %d edges (R-MAT, Graph500 parameters)@."
    g.Dex_apps.Workloads.vertices
    (Array.length g.Dex_apps.Workloads.targets);
  Format.printf "level sum (host reference): %d@.@."
    (Dex_apps.Bfs.reference_level_sum params ~seed:31);
  let baseline = Dex_apps.Bfs.run ~nodes:1 ~variant:A.Baseline ~params () in
  Format.printf "single machine : %a@." A.pp_result baseline;
  List.iter
    (fun variant ->
      let r = Dex_apps.Bfs.run ~nodes:4 ~variant ~params () in
      Format.printf "%-15s: %a  (%.2fx vs single machine)@."
        (A.variant_name variant) A.pp_result r
        (float_of_int baseline.A.sim_time /. float_of_int r.A.sim_time))
    [ A.Initial; A.Optimized ];
  Format.printf
    "@.BFS is frontier-bound: even optimized it does not beat the single \
     machine — exactly the paper's Figure 2.@."
